package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runBench invokes the CLI entry point capturing both streams.
func runBench(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestMeasureWritesValidBench runs a tiny matrix end-to-end and checks
// the written file parses under the current schema with the matrix
// fully enumerated, then self-compares it (a file can never regress
// against itself).
func TestMeasureWritesValidBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	code, stdout, stderr := runBench(t,
		"-policies", "fcfs", "-models", "CTC", "-loads", "1.0",
		"-jobs", "60", "-samples", "2", "-out", out)
	if code != 0 {
		t.Fatalf("measure exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	b, err := loadBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != Schema {
		t.Fatalf("schema = %q, want %q", b.Schema, Schema)
	}
	if len(b.Scenarios) != 3 { // fault off + on + transient
		t.Fatalf("got %d scenarios, want 3", len(b.Scenarios))
	}
	var sawTransient bool
	for _, sc := range b.Scenarios {
		if sc.Transient {
			sawTransient = true
			if !strings.HasSuffix(sc.ID, "/transient") {
				t.Errorf("transient scenario id = %q, want /transient suffix", sc.ID)
			}
		}
	}
	if !sawTransient {
		t.Error("default fault axis produced no transient scenario")
	}
	for _, sc := range b.Scenarios {
		if sc.Events <= 0 {
			t.Errorf("%s: no events recorded", sc.ID)
		}
		if len(sc.NsPerEvent) != 2 || len(sc.EventsPerSec) != 2 {
			t.Errorf("%s: want 2 samples, got %d/%d", sc.ID, len(sc.NsPerEvent), len(sc.EventsPerSec))
		}
		if len(sc.Phases) == 0 {
			t.Errorf("%s: no phase breakdown", sc.ID)
		}
	}
	if b.Env.GoVersion == "" || b.Env.GOMAXPROCS < 1 {
		t.Errorf("environment fingerprint incomplete: %+v", b.Env)
	}

	code, stdout, _ = runBench(t, "-compare", out, out)
	if code != 0 {
		t.Fatalf("self-compare exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("self-compare verdict missing:\n%s", stdout)
	}
}

// writeBench marshals a Bench to a file in the temp dir.
func writeBench(t *testing.T, dir, name string, b *Bench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syntheticBench builds a measurement file with the given per-event
// cost; low variance so the IQR noise gate cannot mask the delta.
func syntheticBench(nsPerEvent float64) *Bench {
	return &Bench{
		Schema:  Schema,
		Jobs:    100,
		Samples: 3,
		Scenarios: []Scenario{{
			ID: "fcfs/CTC/load1/nofault", Policy: "fcfs", Model: "CTC", Load: 1,
			Events:       1000,
			NsPerEvent:   []float64{nsPerEvent * 0.99, nsPerEvent, nsPerEvent * 1.01},
			EventsPerSec: []float64{1e9 / nsPerEvent, 1e9 / nsPerEvent, 1e9 / nsPerEvent},
		}},
	}
}

// TestCompareDetectsSlowdown is the acceptance criterion: an artificial
// 2× ns/event slowdown must be reported as a regression with a
// non-zero exit code.
func TestCompareDetectsSlowdown(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", syntheticBench(500))
	newPath := writeBench(t, dir, "new.json", syntheticBench(1000))

	code, stdout, _ := runBench(t, "-compare", oldPath, newPath)
	if code != 3 {
		t.Fatalf("2x slowdown compare exited %d, want 3:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", stdout)
	}
	if !strings.Contains(stdout, "+100.0%") {
		t.Errorf("report does not show the 2x delta:\n%s", stdout)
	}

	// The reverse direction is an improvement, never a failure.
	code, stdout, _ = runBench(t, "-compare", newPath, oldPath)
	if code != 0 {
		t.Fatalf("speedup compare exited %d, want 0:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "improved") {
		t.Errorf("report does not note the improvement:\n%s", stdout)
	}
}

// TestCompareThreshold checks the noise knob: a 30% slowdown passes a
// 50% threshold and fails a 10% one.
func TestCompareThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", syntheticBench(500))
	newPath := writeBench(t, dir, "new.json", syntheticBench(650))

	if code, out, _ := runBench(t, "-compare", "-threshold", "0.5", oldPath, newPath); code != 0 {
		t.Errorf("30%% slowdown vs 50%% threshold exited %d, want 0:\n%s", code, out)
	}
	if code, out, _ := runBench(t, "-compare", "-threshold", "0.1", oldPath, newPath); code != 3 {
		t.Errorf("30%% slowdown vs 10%% threshold exited %d, want 3:\n%s", code, out)
	}
}

// TestCompareIQRNoiseGate: a delta inside the measurement spread is
// noise even past the relative threshold.
func TestCompareIQRNoiseGate(t *testing.T) {
	dir := t.TempDir()
	noisy := syntheticBench(500)
	noisy.Scenarios[0].NsPerEvent = []float64{200, 500, 1400} // IQR 1200
	oldPath := writeBench(t, dir, "old.json", noisy)
	newPath := writeBench(t, dir, "new.json", syntheticBench(1000))

	code, stdout, _ := runBench(t, "-compare", oldPath, newPath)
	if code != 0 {
		t.Fatalf("delta within IQR noise exited %d, want 0:\n%s", code, stdout)
	}
}

// TestCompareScenarioChurn: added and removed scenarios are reported
// but are not regressions.
func TestCompareScenarioChurn(t *testing.T) {
	dir := t.TempDir()
	oldB := syntheticBench(500)
	oldB.Scenarios[0].ID = "only-old"
	newB := syntheticBench(500)
	newB.Scenarios[0].ID = "only-new"
	oldPath := writeBench(t, dir, "old.json", oldB)
	newPath := writeBench(t, dir, "new.json", newB)

	code, stdout, _ := runBench(t, "-compare", oldPath, newPath)
	if code != 0 {
		t.Fatalf("churn-only compare exited %d, want 0:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "new scenario") || !strings.Contains(stdout, "removed") {
		t.Errorf("churn not reported:\n%s", stdout)
	}
}

// TestCompareRejectsBadInput: schema mismatches and missing files are
// input failures (exit 1); wrong arity is a flag error (exit 2).
func TestCompareRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	good := writeBench(t, dir, "good.json", syntheticBench(500))
	bad := syntheticBench(500)
	bad.Schema = "pjsbench/999"
	badPath := writeBench(t, dir, "bad.json", bad)

	if code, _, _ := runBench(t, "-compare", good, badPath); code != 1 {
		t.Errorf("schema mismatch exited %d, want 1", code)
	}
	if code, _, _ := runBench(t, "-compare", good, filepath.Join(dir, "missing.json")); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
	if code, _, _ := runBench(t, "-compare", good); code != 2 {
		t.Errorf("one-file compare exited %d, want 2", code)
	}
	if code, _, _ := runBench(t, "-models", "NoSuchMachine"); code != 1 {
		t.Errorf("unknown model exited %d, want 1", code)
	}
	if code, _, _ := runBench(t, "-loads", "zero"); code != 1 {
		t.Errorf("bad load exited %d, want 1", code)
	}
}

// TestMedianIQR pins the order statistics the verdict hangs on.
func TestMedianIQR(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median empty = %v, want 0", got)
	}
	if got := iqr([]float64{1, 2, 3, 4, 5}); got != 2 {
		t.Errorf("iqr = %v, want 2", got)
	}
	if got := iqr([]float64{200, 500, 1400}); got != 1200 {
		t.Errorf("iqr n=3 = %v, want 1200 (q3 rounds up)", got)
	}
	if got := iqr([]float64{7}); got != 0 {
		t.Errorf("iqr single = %v, want 0", got)
	}
}

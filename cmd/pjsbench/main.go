// Command pjsbench measures simulator performance over a deterministic
// scenario matrix and gates regressions between two measurement files.
//
// Measure mode runs every combination of scheduling policy × workload
// model × offered-load level × {no-fault, fault-injected,
// transient-I/O}, repeating
// each scenario -samples times, and writes a schema-versioned BENCH.json
// (atomically) with throughput, allocation and per-phase hot-path
// timings plus an environment fingerprint:
//
//	pjsbench -out BENCH.json
//	pjsbench -policies ns,ss:2 -models CTC -loads 1.0,1.3 -jobs 2000 -samples 5
//
// Compare mode reads two BENCH.json files and prints a deterministic
// regression report — median and IQR per scenario, a configurable noise
// threshold — exiting non-zero when a regression is detected:
//
//	pjsbench -compare results/BENCH_seed.json BENCH.json
//	pjsbench -compare -threshold 0.10 old.json new.json
//
// The workloads and simulations themselves are fully deterministic
// (same trace, same events, same audit stream every run); only the
// wall-clock timings vary between machines and runs. The compare
// verdict is a pure function of the two files and the threshold.
//
// Exit codes: 0 success, 1 run or input failure, 2 flag error,
// 3 regression detected (compare mode).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pjs"
	"pjs/internal/ckpt"
	"pjs/internal/cli"
	"pjs/internal/fault"
	"pjs/internal/overhead"
	"pjs/internal/perf"
	"pjs/internal/sched"
	"pjs/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: both streams are latched so a lost
// stdout write surfaces as a non-zero exit code (INV-errwrite).
func run(args []string, stdoutW, stderrW io.Writer) int {
	stdout, stderr := cli.Wrap(stdoutW), cli.Wrap(stderrW)
	return cli.Exit("pjsbench", pjsbench(args, stdout, stderr), stdout, stderr)
}

// Schema is the BENCH.json format version. Bump it on any change to
// the serialized shape; compare refuses mismatched schemas.
const Schema = "pjsbench/1"

// Bench is the top-level BENCH.json document.
type Bench struct {
	Schema    string     `json:"schema"`
	Env       EnvInfo    `json:"env"`
	Jobs      int        `json:"jobs"`
	Samples   int        `json:"samples"`
	Seed      int64      `json:"seed"`
	Scenarios []Scenario `json:"scenarios"`
}

// EnvInfo fingerprints the measurement environment, so a compare
// across different machines or toolchains is visibly apples-to-oranges.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Scenario is one matrix cell's measurements. Events is deterministic
// (a property of the simulation, identical every run); the per-sample
// arrays are wall-clock measurements in sample order.
type Scenario struct {
	ID     string  `json:"id"`
	Policy string  `json:"policy"`
	Model  string  `json:"model"`
	Load   float64 `json:"load"`
	Fault  bool    `json:"fault"`
	// Transient marks the transient-I/O cell (suspend/restart faults
	// with retry/backoff, under the disk overhead model). Omitempty
	// keeps older BENCH.json files schema-compatible: absent means
	// false, and compare treats the new cells as scenario churn.
	Transient bool  `json:"transient,omitempty"`
	Events    int64 `json:"events"`

	ElapsedNs      []int64   `json:"elapsed_ns"`
	NsPerEvent     []float64 `json:"ns_per_event"`
	EventsPerSec   []float64 `json:"events_per_sec"`
	AllocsPerEvent []float64 `json:"allocs_per_event"`
	HeapBytes      []uint64  `json:"heap_bytes"`

	Phases []PhaseBreakdown `json:"phases"`
}

// PhaseBreakdown is one hot-path phase's cost in a scenario. Calls is
// deterministic; NanosTotal holds one per-sample total each.
type PhaseBreakdown struct {
	Name       string  `json:"name"`
	Calls      int64   `json:"calls"`
	NanosTotal []int64 `json:"nanos_total"`
}

// benchFaults is the fault configuration of the matrix's fault-injected
// cells: failures rare enough that every policy still finishes, frequent
// enough to exercise the failure paths (MTBF 200 h, MTTR 2 h).
var benchFaults = fault.Config{MTBF: 200 * 3600, MTTR: 2 * 3600, Seed: 1}

// benchTransient is the transient-I/O configuration of the matrix's
// transient cells: aggressive enough (30% per operation) to exercise the
// retry/backoff, exhaustion and health-degradation paths on every
// policy that suspends.
var benchTransient = fault.TransientConfig{WriteFailProb: 0.3, ReadFailProb: 0.3, Seed: 1}

// Fault-axis modes, in matrix order.
const (
	faultNone      = "nofault"
	faultProc      = "fault"
	faultTransient = "transient"
)

func pjsbench(args []string, stdout, stderr *cli.W) int {
	fs := flag.NewFlagSet("pjsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policies  = fs.String("policies", "ns,conservative,ss:2,tss:2", "comma-separated scheduler specs (see psim -sched)")
		models    = fs.String("models", "CTC,SDSC", "comma-separated workload models")
		loads     = fs.String("loads", "1.0", "comma-separated offered-load multipliers")
		jobs      = fs.Int("jobs", 1500, "jobs per generated trace")
		samples   = fs.Int("samples", 3, "timed repetitions per scenario")
		seed      = fs.Int64("seed", 1, "workload generator seed")
		faultMode = fs.String("fault", "all", "fault-injection axis: off, on, transient, both (off+on) or all")
		out       = fs.String("out", "BENCH.json", "output file (measure mode)")
		compare   = fs.Bool("compare", false, "compare two BENCH.json files: pjsbench -compare old.json new.json")
		threshold = fs.Float64("threshold", 0.25, "relative ns/event slowdown treated as a regression (compare mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		stderr.Println("pjsbench:", err)
		return 1
	}

	if *compare {
		if fs.NArg() != 2 {
			stderr.Println("pjsbench: -compare needs exactly two files: old.json new.json")
			return 2
		}
		return compareFiles(fs.Arg(0), fs.Arg(1), *threshold, stdout, stderr)
	}
	if fs.NArg() != 0 {
		stderr.Printf("pjsbench: unexpected arguments %q (did you mean -compare?)\n", fs.Args())
		return 2
	}
	if *samples < 1 || *jobs < 1 {
		return fail(fmt.Errorf("-samples and -jobs must be ≥ 1, got %d/%d", *samples, *jobs))
	}

	var faultAxis []string
	switch *faultMode {
	case "off":
		faultAxis = []string{faultNone}
	case "on":
		faultAxis = []string{faultProc}
	case "transient":
		faultAxis = []string{faultTransient}
	case "both":
		faultAxis = []string{faultNone, faultProc}
	case "all":
		faultAxis = []string{faultNone, faultProc, faultTransient}
	default:
		return fail(fmt.Errorf("unknown -fault %q (want off, on, transient, both or all)", *faultMode))
	}
	loadVals, err := parseLoads(*loads)
	if err != nil {
		return fail(err)
	}

	bench := &Bench{
		Schema: Schema,
		Env: EnvInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Jobs:    *jobs,
		Samples: *samples,
		Seed:    *seed,
	}

	// The matrix is enumerated in flag order — policies outermost, fault
	// axis innermost — so scenario IDs land in the same order every run
	// and compare never has to re-sort.
	for _, spec := range strings.Split(*policies, ",") {
		spec = strings.TrimSpace(spec)
		for _, modelName := range strings.Split(*models, ",") {
			modelName = strings.TrimSpace(modelName)
			m, ok := workload.ModelByName(modelName)
			if !ok {
				return fail(fmt.Errorf("unknown model %q", modelName))
			}
			for _, load := range loadVals {
				for _, mode := range faultAxis {
					mm := m
					mm.OfferedLoad *= load
					sc, err := measure(spec, modelName, mm, load, mode, *jobs, *samples, *seed)
					if err != nil {
						return fail(err)
					}
					bench.Scenarios = append(bench.Scenarios, *sc)
					med := median(sc.EventsPerSec)
					stderr.Printf("pjsbench: %-32s events=%-8d median %.0f events/sec\n", sc.ID, sc.Events, med)
				}
			}
		}
	}

	err = ckpt.WriteAtomic(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(bench)
	})
	if err != nil {
		return fail(err)
	}
	stdout.Printf("pjsbench: wrote %d scenarios (%d samples each) to %s\n",
		len(bench.Scenarios), *samples, *out)
	return 0
}

// parseLoads parses the comma-separated load multipliers.
func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -loads entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// scenarioID names one matrix cell, stable across runs and flags. The
// mode string is the ID suffix, so pre-transient IDs are unchanged.
func scenarioID(policy, model string, load float64, mode string) string {
	return fmt.Sprintf("%s/%s/load%.2g/%s", policy, model, load, mode)
}

// measure times one scenario: the trace is generated once (identical
// for every sample), then the simulation runs samples times with a
// fresh scheduler, probe and memory-stats window each.
func measure(spec, modelName string, m workload.Model, load float64, mode string, jobs, samples int, seed int64) (*Scenario, error) {
	trace := workload.Generate(m, workload.GenOptions{Jobs: jobs, Seed: seed})
	sc := &Scenario{
		ID:        scenarioID(spec, modelName, load, mode),
		Policy:    spec,
		Model:     modelName,
		Load:      load,
		Fault:     mode == faultProc,
		Transient: mode == faultTransient,
	}
	clock := perf.Monotonic()
	for i := 0; i < samples; i++ {
		s, err := pjs.NewScheduler(spec)
		if err != nil {
			return nil, err
		}
		opt := sched.Options{Probe: perf.NewProbe(nil)}
		switch mode {
		case faultProc:
			opt.Faults = benchFaults
		case faultTransient:
			// Transient cells run under the disk overhead model so the
			// injected I/O has nonzero duration — the retry/backoff and
			// health machinery is on the timed path.
			opt.Transient = benchTransient
			opt.Overhead = overhead.Disk{}
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := clock()
		res, err := sched.RunChecked(trace, s, opt)
		elapsed := clock() - start
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.ID, err)
		}
		runtime.ReadMemStats(&after)

		if i == 0 {
			sc.Events = res.Events
		} else if sc.Events != res.Events {
			return nil, fmt.Errorf("scenario %s: non-deterministic event count %d vs %d",
				sc.ID, sc.Events, res.Events)
		}
		sc.ElapsedNs = append(sc.ElapsedNs, elapsed)
		sc.NsPerEvent = append(sc.NsPerEvent, float64(elapsed)/float64(res.Events))
		sc.EventsPerSec = append(sc.EventsPerSec, float64(res.Events)/(float64(elapsed)/1e9))
		sc.AllocsPerEvent = append(sc.AllocsPerEvent,
			float64(after.Mallocs-before.Mallocs)/float64(res.Events))
		sc.HeapBytes = append(sc.HeapBytes, after.HeapAlloc)

		stats := opt.Probe.Snapshot()
		for ph := perf.Phase(0); ph < perf.NumPhases; ph++ {
			st := stats[ph]
			if st.Calls == 0 {
				continue
			}
			sc.addPhaseSample(ph.String(), st.Calls, st.Nanos)
		}
	}
	return sc, nil
}

// addPhaseSample appends one sample's total to the named phase row,
// creating it on the first sample and checking the deterministic call
// count on later ones.
func (sc *Scenario) addPhaseSample(name string, calls, nanos int64) {
	for i := range sc.Phases {
		if sc.Phases[i].Name == name {
			sc.Phases[i].NanosTotal = append(sc.Phases[i].NanosTotal, nanos)
			return
		}
	}
	sc.Phases = append(sc.Phases, PhaseBreakdown{Name: name, Calls: calls, NanosTotal: []int64{nanos}})
}

// median returns the middle of the sorted values (mean of the central
// pair for even counts); 0 for an empty slice.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// iqr returns the interquartile range (p75 − p25) of the values; 0 when
// fewer than two samples exist. The quartile ranks round outward (q1
// down, q3 up), so small sample counts yield a wide — conservative —
// noise band rather than collapsing onto the median.
func iqr(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	q1 := s[(len(s)-1)/4]
	q3 := s[(3*(len(s)-1)+3)/4]
	return q3 - q1
}

// loadBench reads and validates one BENCH.json file.
func loadBench(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, this tool reads %q", path, b.Schema, Schema)
	}
	return &b, nil
}

// compareFiles renders the regression report between two measurement
// files. A scenario regresses when its new median ns/event exceeds the
// old median by more than threshold (relative) AND the absolute gap
// exceeds both files' IQR — a wide-variance measurement is noise, not
// evidence. The report and verdict are a pure function of the inputs.
func compareFiles(oldPath, newPath string, threshold float64, stdout, stderr *cli.W) int {
	oldB, err := loadBench(oldPath)
	if err != nil {
		stderr.Println("pjsbench:", err)
		return 1
	}
	newB, err := loadBench(newPath)
	if err != nil {
		stderr.Println("pjsbench:", err)
		return 1
	}
	if oldB.Env != newB.Env {
		stderr.Printf("pjsbench: warning: environments differ (old %+v, new %+v); timings are not directly comparable\n",
			oldB.Env, newB.Env)
	}

	oldByID := map[string]*Scenario{}
	for i := range oldB.Scenarios {
		oldByID[oldB.Scenarios[i].ID] = &oldB.Scenarios[i]
	}

	stdout.Printf("%-34s %12s %12s %8s  %s\n", "scenario", "old ns/ev", "new ns/ev", "delta", "verdict")
	regressions := 0
	matched := map[string]bool{}
	for i := range newB.Scenarios {
		n := &newB.Scenarios[i]
		o, ok := oldByID[n.ID]
		if !ok {
			stdout.Printf("%-34s %12s %12.0f %8s  new scenario\n", n.ID, "-", median(n.NsPerEvent), "-")
			continue
		}
		matched[n.ID] = true
		oldMed, newMed := median(o.NsPerEvent), median(n.NsPerEvent)
		delta := (newMed - oldMed) / oldMed
		noise := iqr(o.NsPerEvent)
		if ni := iqr(n.NsPerEvent); ni > noise {
			noise = ni
		}
		verdict := "ok"
		if delta > threshold && newMed-oldMed > noise {
			verdict = "REGRESSION"
			regressions++
		} else if delta < -threshold {
			verdict = "improved"
		}
		stdout.Printf("%-34s %12.0f %12.0f %+7.1f%%  %s\n", n.ID, oldMed, newMed, 100*delta, verdict)
		if o.Events != n.Events {
			stdout.Printf("%-34s   note: event count changed %d -> %d (different simulation, not a perf delta)\n",
				n.ID, o.Events, n.Events)
		}
	}
	// Report scenarios that disappeared, in the old file's order (never
	// map order — the report must be byte-stable).
	for i := range oldB.Scenarios {
		if id := oldB.Scenarios[i].ID; !matched[id] {
			stdout.Printf("%-34s   removed (present only in %s)\n", id, oldPath)
		}
	}
	if regressions > 0 {
		stdout.Printf("pjsbench: %d regression(s) above %.0f%% threshold\n", regressions, 100*threshold)
		return 3
	}
	stdout.Printf("pjsbench: no regressions above %.0f%% threshold\n", 100*threshold)
	return 0
}

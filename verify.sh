#!/bin/sh
# Tier-1 verification gate. CI runs exactly this; run it locally before
# pushing. The pjslint step enforces the determinism invariants
# (wallclock/detrand/stablesort/maporder/errwrite — see DESIGN.md,
# "Determinism invariants & static analysis"); the -race test run
# includes the double-run audit-log determinism regression for every
# scheduler in the registry.
set -eu

echo '>> go vet ./...'
go vet ./...
echo '>> go run ./cmd/pjslint ./...'
go run ./cmd/pjslint ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
echo 'verify: ok'

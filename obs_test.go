package pjs_test

import (
	"bytes"
	"testing"

	"pjs"
	"pjs/internal/obs"
	"pjs/internal/sched"
)

// TestCountersMatchAuditLog cross-validates the observer path against
// the audit path: for every registered policy, one instrumented audited
// run, then a replay of AuditLog.Entries must reproduce the observer's
// action counts exactly. The two records are produced by independent
// code paths off the same engine events, so any drift (a missed emit
// call site, a double count) shows up as a mismatch here.
func TestCountersMatchAuditLog(t *testing.T) {
	trace := pjs.Generate(pjs.SDSC(), pjs.GenOptions{Jobs: 300, Seed: 7})
	for _, spec := range pjs.SchedulerSpecs() {
		t.Run(spec, func(t *testing.T) {
			s, err := pjs.NewScheduler(spec)
			if err != nil {
				t.Fatalf("NewScheduler(%q): %v", spec, err)
			}
			c := obs.NewCounters(s.Name(), trace.Procs)
			opt := pjs.DiskOverhead()
			opt.Audit = true
			opt.MaxSteps = 10_000_000
			opt.Observer = c
			res := pjs.Simulate(trace, s, opt)

			var want obs.Counters
			for _, e := range res.Audit.Entries {
				switch e.Action {
				case sched.ActArrive:
					want.Arrivals++
				case sched.ActStart:
					want.Starts++
				case sched.ActResume:
					want.Resumes++
				case sched.ActSuspendBegin:
					want.SuspendBegins++
				case sched.ActSuspendDone:
					want.SuspendDones++
				case sched.ActFinish:
					want.Finishes++
				case sched.ActKill:
					want.Kills++
				default:
					t.Fatalf("unexpected audit action %v", e.Action)
				}
			}

			got := c.Snapshot()
			type pair struct {
				name      string
				got, want int64
			}
			for _, p := range []pair{
				{"arrivals", got.Arrivals, want.Arrivals},
				{"starts", got.Starts, want.Starts},
				{"resumes", got.Resumes, want.Resumes},
				{"suspend-begins", got.SuspendBegins, want.SuspendBegins},
				{"suspend-dones", got.SuspendDones, want.SuspendDones},
				{"finishes", got.Finishes, want.Finishes},
				{"kills", got.Kills, want.Kills},
			} {
				if p.got != p.want {
					t.Errorf("%s: observer counted %d %s, audit log has %d",
						spec, p.got, p.name, p.want)
				}
			}
			if got.Arrivals != int64(len(trace.Jobs)) {
				t.Errorf("%s: observer counted %d arrivals, trace has %d jobs",
					spec, got.Arrivals, len(trace.Jobs))
			}
			if got.Finishes != int64(len(trace.Jobs)) {
				t.Errorf("%s: observer counted %d finishes, trace has %d jobs",
					spec, got.Finishes, len(trace.Jobs))
			}
		})
	}
}

// TestInstrumentedRunDeterminism extends the double-run regression to
// every observability artifact: two identical instrumented runs must
// produce byte-identical Perfetto trace JSON, time-series CSV and
// counter dumps. This is what licenses diffing exported artifacts
// across commits as a change detector.
func TestInstrumentedRunDeterminism(t *testing.T) {
	trace := pjs.Generate(pjs.CTC(), pjs.GenOptions{Jobs: 250, Seed: 11})
	for _, spec := range []string{"ns", "ss:2"} {
		t.Run(spec, func(t *testing.T) {
			run := func() (traceJSON, tsCSV, dump string) {
				s, err := pjs.NewScheduler(spec)
				if err != nil {
					t.Fatalf("NewScheduler(%q): %v", spec, err)
				}
				tb := obs.NewTraceBuilder(trace.Procs)
				sm := obs.NewSampler(trace.Procs)
				c := obs.NewCounters(s.Name(), trace.Procs)
				opt := pjs.DiskOverhead()
				opt.MaxSteps = 10_000_000
				opt.Observer = obs.NewFanOut(tb, sm, c)
				pjs.Simulate(trace, s, opt)

				var jb, cb bytes.Buffer
				if err := tb.WriteJSON(&jb); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				if err := sm.WriteCSV(&cb); err != nil {
					t.Fatalf("WriteCSV: %v", err)
				}
				return jb.String(), cb.String(), c.String()
			}
			j1, c1, d1 := run()
			j2, c2, d2 := run()
			if j1 != j2 {
				t.Errorf("%s: trace JSON differs between identical runs (%d vs %d bytes)",
					spec, len(j1), len(j2))
			}
			if c1 != c2 {
				t.Errorf("%s: time-series CSV differs between identical runs:\n%s",
					spec, firstDivergence(c1, c2))
			}
			if d1 != d2 {
				t.Errorf("%s: counter dumps differ between identical runs:\n%s",
					spec, firstDivergence(d1, d2))
			}
			if _, err := obs.ValidateTrace([]byte(j1)); err != nil {
				t.Errorf("%s: exported trace does not validate: %v", spec, err)
			}
		})
	}
}
